package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/addr"
)

func TestProfileValidate(t *testing.T) {
	good := Profile{Name: "ok", FootprintBytes: 1 * addr.MiB, AvgGap: 4, RunMean: 8,
		HotFraction: 0.1, HotProbability: 0.5, WriteFraction: 0.3}
	if err := good.Validate(); err != nil {
		t.Fatalf("good profile rejected: %v", err)
	}
	bad := []Profile{
		{Name: "tiny", FootprintBytes: 64, AvgGap: 4, RunMean: 8, HotFraction: 0.1},
		{Name: "gap", FootprintBytes: 1 * addr.MiB, AvgGap: 0.5, RunMean: 8, HotFraction: 0.1},
		{Name: "run", FootprintBytes: 1 * addr.MiB, AvgGap: 4, RunMean: 0, HotFraction: 0.1},
		{Name: "hotf", FootprintBytes: 1 * addr.MiB, AvgGap: 4, RunMean: 8, HotFraction: 0},
		{Name: "hotp", FootprintBytes: 1 * addr.MiB, AvgGap: 4, RunMean: 8, HotFraction: 0.1, HotProbability: 1.5},
		{Name: "wf", FootprintBytes: 1 * addr.MiB, AvgGap: 4, RunMean: 8, HotFraction: 0.1, WriteFraction: -0.1},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("profile %q accepted", p.Name)
		}
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	p := Profile{Name: "det", FootprintBytes: 4 * addr.MiB, AvgGap: 4, RunMean: 8,
		HotFraction: 0.1, HotProbability: 0.6, WriteFraction: 0.3, Seed: 7}
	g1, err := NewSynthetic(p)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := NewSynthetic(p)
	for i := 0; i < 10000; i++ {
		a1, _ := g1.Next()
		a2, _ := g2.Next()
		if a1 != a2 {
			t.Fatalf("divergence at access %d: %+v vs %+v", i, a1, a2)
		}
	}
}

func TestSyntheticStaysInFootprint(t *testing.T) {
	p := Profile{Name: "bound", FootprintBytes: 1 * addr.MiB, AvgGap: 2, RunMean: 64,
		HotFraction: 0.2, HotProbability: 0.5, WriteFraction: 0.3}
	g, err := NewSynthetic(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200000; i++ {
		a, ok := g.Next()
		if !ok {
			t.Fatal("endless stream ended")
		}
		if uint64(a.Addr) >= p.FootprintBytes {
			t.Fatalf("address %#x outside footprint %#x", uint64(a.Addr), p.FootprintBytes)
		}
	}
}

func TestSpatialKnobControlsSeqFraction(t *testing.T) {
	mk := func(run float64) Characteristics {
		p := Profile{Name: "spatial", FootprintBytes: 16 * addr.MiB, AvgGap: 2, RunMean: run,
			HotFraction: 0.2, HotProbability: 0.3, WriteFraction: 0.3}
		g, err := NewSynthetic(p)
		if err != nil {
			t.Fatal(err)
		}
		return Characterize(g, 100000)
	}
	long := mk(64)
	short := mk(1.2)
	if long.SeqFraction <= short.SeqFraction+0.3 {
		t.Errorf("RunMean knob weak: seq fraction %f (long) vs %f (short)",
			long.SeqFraction, short.SeqFraction)
	}
}

func TestTemporalKnobControlsReuse(t *testing.T) {
	mk := func(hotProb float64) Characteristics {
		p := Profile{Name: "temporal", FootprintBytes: 64 * addr.MiB, AvgGap: 2, RunMean: 4,
			HotFraction: 0.01, HotProbability: hotProb, WriteFraction: 0.3}
		g, err := NewSynthetic(p)
		if err != nil {
			t.Fatal(err)
		}
		return Characterize(g, 100000)
	}
	hot := mk(0.95)
	cold := mk(0.05)
	if hot.ReuseFraction <= cold.ReuseFraction+0.2 {
		t.Errorf("HotProbability knob weak: reuse %f (hot) vs %f (cold)",
			hot.ReuseFraction, cold.ReuseFraction)
	}
}

func TestWriteFraction(t *testing.T) {
	p := Profile{Name: "wf", FootprintBytes: 8 * addr.MiB, AvgGap: 2, RunMean: 4,
		HotFraction: 0.1, HotProbability: 0.5, WriteFraction: 0.4}
	g, err := NewSynthetic(p)
	if err != nil {
		t.Fatal(err)
	}
	c := Characterize(g, 100000)
	got := float64(c.Writes) / float64(c.Accesses)
	if got < 0.3 || got > 0.5 {
		t.Errorf("write fraction = %f, want ~0.4", got)
	}
}

func TestTableIIComplete(t *testing.T) {
	bs := TableII()
	if len(bs) != 14 {
		t.Fatalf("TableII has %d benchmarks, want 14", len(bs))
	}
	groups := map[MPKIClass]int{}
	for _, b := range bs {
		if err := b.Profile.Validate(); err != nil {
			t.Errorf("%s: %v", b.Profile.Name, err)
		}
		groups[b.Class]++
		want := b.PaperGB * float64(addr.GiB)
		got := float64(b.Profile.FootprintBytes)
		if got < want*0.99 || got > want*1.01 {
			t.Errorf("%s footprint %f GB, Table II says %f", b.Profile.Name, got/float64(addr.GiB), b.PaperGB)
		}
	}
	if groups[HighMPKI] != 4 || groups[MediumMPKI] != 4 || groups[LowMPKI] != 6 {
		t.Errorf("group sizes = %v, want 4/4/6", groups)
	}
}

func TestPaperLocalityClasses(t *testing.T) {
	// Figure 1 rests on these three classes; make sure our stand-ins
	// measurably exhibit them.
	check := func(name string, wantSeqHigh, wantReuseHigh bool) {
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		g, err := NewSynthetic(b.Scale(64).Profile)
		if err != nil {
			t.Fatal(err)
		}
		// Skip the initialization sweep; the classes describe steady state.
		for i := 0; i < 1<<16; i++ {
			g.Next()
		}
		c := Characterize(g, 200000)
		seqHigh := c.SeqFraction > 0.5
		reuseHigh := c.ReuseFraction > 0.5
		if seqHigh != wantSeqHigh {
			t.Errorf("%s: seq fraction %f, want high=%v", name, c.SeqFraction, wantSeqHigh)
		}
		if reuseHigh != wantReuseHigh {
			t.Errorf("%s: reuse fraction %f, want high=%v", name, c.ReuseFraction, wantReuseHigh)
		}
	}
	check("mcf", true, true)  // strong spatial, strong temporal
	check("wrf", false, true) // weak spatial, strong temporal
	check("xz", true, false)  // strong spatial, weak temporal
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nonesuch"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestScaleFloorsFootprint(t *testing.T) {
	b, _ := ByName("leela") // 0.1 GB
	s := b.Scale(1 << 20)
	if s.Profile.FootprintBytes < 64*addr.KiB {
		t.Errorf("scaled footprint %d below floor", s.Profile.FootprintBytes)
	}
}

func TestLimitStream(t *testing.T) {
	g, _ := NewSynthetic(Profile{Name: "lim", FootprintBytes: 1 * addr.MiB, AvgGap: 2,
		RunMean: 4, HotFraction: 0.1, HotProbability: 0.5})
	l := &Limit{S: g, N: 100}
	n := 0
	for {
		_, ok := l.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 100 {
		t.Errorf("limit yielded %d accesses, want 100", n)
	}
}

func TestConcatPhases(t *testing.T) {
	g1, _ := NewSynthetic(Profile{Name: "p1", FootprintBytes: 1 * addr.MiB, AvgGap: 2,
		RunMean: 4, HotFraction: 0.1, HotProbability: 0.5})
	g2, _ := NewSynthetic(Profile{Name: "p2", FootprintBytes: 1 * addr.MiB, AvgGap: 2,
		RunMean: 4, HotFraction: 0.1, HotProbability: 0.5})
	c := &Concat{Streams: []Stream{&Limit{S: g1, N: 50}, &Limit{S: g2, N: 70}}}
	n := 0
	for {
		_, ok := c.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 120 {
		t.Errorf("concat yielded %d, want 120", n)
	}
}

func TestTraceIORoundTrip(t *testing.T) {
	g, _ := NewSynthetic(Profile{Name: "io", FootprintBytes: 4 * addr.MiB, AvgGap: 3,
		RunMean: 8, HotFraction: 0.1, HotProbability: 0.6, WriteFraction: 0.3})
	var orig []Access
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		a, _ := g.Next()
		orig = append(orig, a)
		if err := w.Write(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 5000 {
		t.Errorf("writer count = %d", w.Count())
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range orig {
		got, ok := r.Next()
		if !ok {
			t.Fatalf("trace ended at %d: %v", i, r.Err())
		}
		if got != want {
			t.Fatalf("record %d = %+v, want %+v", i, got, want)
		}
	}
	if _, ok := r.Next(); ok {
		t.Error("trace yielded extra record")
	}
	if r.Err() != nil {
		t.Errorf("clean EOF reported error %v", r.Err())
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("XXXX\x01"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader([]byte("BBTR\x09"))); err == nil {
		t.Error("bad version accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

func TestReaderTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(Access{Addr: 0x40, Gap: 2})
	w.Flush()
	full := buf.Bytes()
	r, err := NewReader(bytes.NewReader(full[:len(full)-1]))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Next(); ok {
		t.Error("truncated record decoded")
	}
	if r.Err() == nil {
		t.Error("truncation not reported")
	}
}

func TestZigzagRoundTrip(t *testing.T) {
	f := func(v int64) bool { return unzigzag(zigzag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGGeometricMean(t *testing.T) {
	r := newRNG(42)
	const n = 100000
	var sum uint64
	for i := 0; i < n; i++ {
		sum += r.geometric(8)
	}
	mean := float64(sum) / n
	if mean < 6.5 || mean > 9.5 {
		t.Errorf("geometric(8) mean = %f", mean)
	}
}

func TestRNGUniform(t *testing.T) {
	r := newRNG(1)
	buckets := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		buckets[r.uint64n(10)]++
	}
	for i, b := range buckets {
		if b < n/10-n/50 || b > n/10+n/50 {
			t.Errorf("bucket %d = %d, want ~%d", i, b, n/10)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	p := Profile{Name: "zipf", FootprintBytes: 16 * addr.MiB, AvgGap: 2, RunMean: 1,
		HotFraction: 0.1, HotProbability: 0, WriteFraction: 0, ZipfAlpha: 1}
	g, err := NewSynthetic(p)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[uint64]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		a, _ := g.Next()
		counts[uint64(a.Addr)/64]++
	}
	// A Zipf stream concentrates: the most popular word should hold far
	// more than a uniform share, and the distinct-word count should be
	// well below the access count.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	words := p.FootprintBytes / 64
	uniform := float64(n) / float64(words)
	if float64(max) < 50*uniform {
		t.Errorf("zipf max count %d not skewed (uniform share %.2f)", max, uniform)
	}
	if len(counts) >= n {
		t.Errorf("zipf produced no reuse: %d distinct of %d", len(counts), n)
	}
}

func TestZipfValidation(t *testing.T) {
	p := Profile{Name: "badzipf", FootprintBytes: 1 * addr.MiB, AvgGap: 2, RunMean: 1,
		HotFraction: 0.1, ZipfAlpha: 5}
	if err := p.Validate(); err == nil {
		t.Error("alpha 5 accepted")
	}
}

func TestScatteredHotSpreadsPages(t *testing.T) {
	// Scattered hot words must touch many more distinct pages than a
	// contiguous hot region of the same size.
	mk := func(scattered bool) int {
		p := Profile{Name: "scat", FootprintBytes: 64 * addr.MiB, AvgGap: 2, RunMean: 1,
			HotFraction: 0.02, HotProbability: 1.0, ScatteredHot: scattered}
		g, err := NewSynthetic(p)
		if err != nil {
			t.Fatal(err)
		}
		pages := map[uint64]bool{}
		for i := 0; i < 50000; i++ {
			a, _ := g.Next()
			pages[uint64(a.Addr)/(64*1024)] = true
		}
		return len(pages)
	}
	contig := mk(false)
	scat := mk(true)
	if scat < contig*2 {
		t.Errorf("scattered hot pages %d not much larger than contiguous %d", scat, contig)
	}
}
