// Package cache implements the on-chip SRAM cache hierarchy of Table I:
// set-associative write-back caches with LRU, SRRIP and DRRIP replacement,
// composed into an L1/L2/L3 hierarchy that turns a core's load/store stream
// into the LLC-miss stream consumed by the hybrid memory system.
package cache

// Policy is a per-cache replacement policy. Implementations keep all
// per-set state internally, indexed by (set, way).
type Policy interface {
	// OnHit is called when way in set is hit.
	OnHit(set, way int)
	// OnFill is called when a new line is installed in way of set.
	OnFill(set, way int)
	// Victim selects the way to evict from set. Every way is valid.
	Victim(set int) int
}

// --- LRU ---

type lru struct {
	// stamp[set][way] is a per-set logical clock value; the smallest stamp
	// is the least recently used way.
	stamp [][]uint64
	clock []uint64
}

// NewLRU returns a least-recently-used policy for sets x ways lines.
func NewLRU(sets, ways int) Policy {
	p := &lru{stamp: make([][]uint64, sets), clock: make([]uint64, sets)}
	for i := range p.stamp {
		p.stamp[i] = make([]uint64, ways)
	}
	return p
}

func (p *lru) touch(set, way int) {
	p.clock[set]++
	p.stamp[set][way] = p.clock[set]
}

func (p *lru) OnHit(set, way int)  { p.touch(set, way) }
func (p *lru) OnFill(set, way int) { p.touch(set, way) }

func (p *lru) Victim(set int) int {
	ways := p.stamp[set]
	victim, min := 0, ways[0]
	for w := 1; w < len(ways); w++ {
		if ways[w] < min {
			victim, min = w, ways[w]
		}
	}
	return victim
}

// --- SRRIP ---

// rrpvMax is the 2-bit re-reference prediction value ceiling.
const rrpvMax = 3

type srrip struct {
	rrpv [][]uint8
	// brip: fill distantly most of the time (bimodal), used by DRRIP.
	brip  bool
	fills uint64 // bimodal counter for BRRIP fills
}

// NewSRRIP returns a static re-reference interval prediction policy
// (Jaleel et al., ISCA'10) with 2-bit RRPVs.
func NewSRRIP(sets, ways int) Policy { return newRRIP(sets, ways, false) }

func newRRIP(sets, ways int, brip bool) *srrip {
	p := &srrip{rrpv: make([][]uint8, sets), brip: brip}
	for i := range p.rrpv {
		p.rrpv[i] = make([]uint8, ways)
		for w := range p.rrpv[i] {
			p.rrpv[i][w] = rrpvMax
		}
	}
	return p
}

func (p *srrip) OnHit(set, way int) { p.rrpv[set][way] = 0 }

func (p *srrip) OnFill(set, way int) {
	if p.brip {
		// BRRIP: mostly distant (rrpvMax), occasionally long (rrpvMax-1).
		p.fills++
		if p.fills%32 == 0 {
			p.rrpv[set][way] = rrpvMax - 1
		} else {
			p.rrpv[set][way] = rrpvMax
		}
		return
	}
	p.rrpv[set][way] = rrpvMax - 1 // long re-reference interval
}

func (p *srrip) Victim(set int) int {
	row := p.rrpv[set]
	for {
		for w, v := range row {
			if v == rrpvMax {
				return w
			}
		}
		for w := range row {
			row[w]++
		}
	}
}

// --- DRRIP ---

type drrip struct {
	sr, br *srrip
	// Set dueling: a few leader sets are dedicated to each component
	// policy; PSEL picks the winner for follower sets.
	psel     int
	duelMask int
}

// NewDRRIP returns a dynamic RRIP policy using set dueling between SRRIP
// and BRRIP.
func NewDRRIP(sets, ways int) Policy {
	return &drrip{
		sr:       newRRIP(sets, ways, false),
		br:       newRRIP(sets, ways, true),
		duelMask: 31,
	}
}

// leader returns +1 for SRRIP leader sets, -1 for BRRIP leaders, 0 for
// follower sets.
func (p *drrip) leader(set int) int {
	switch set & p.duelMask {
	case 0:
		return 1
	case 1:
		return -1
	}
	return 0
}

func (p *drrip) OnHit(set, way int) {
	p.sr.OnHit(set, way)
	p.br.OnHit(set, way)
}

func (p *drrip) OnFill(set, way int) {
	// A fill means the previous access to this set missed; leaders vote.
	switch p.leader(set) {
	case 1:
		if p.psel < 512 {
			p.psel++ // SRRIP leader missed: penalize SRRIP
		}
	case -1:
		if p.psel > -512 {
			p.psel--
		}
	}
	if p.useSRRIP(set) {
		p.sr.OnFill(set, way)
		p.br.rrpv[set][way] = p.sr.rrpv[set][way]
	} else {
		p.br.OnFill(set, way)
		p.sr.rrpv[set][way] = p.br.rrpv[set][way]
	}
}

func (p *drrip) useSRRIP(set int) bool {
	switch p.leader(set) {
	case 1:
		return true
	case -1:
		return false
	}
	return p.psel <= 0
}

func (p *drrip) Victim(set int) int {
	if p.useSRRIP(set) {
		v := p.sr.Victim(set)
		copy(p.br.rrpv[set], p.sr.rrpv[set])
		return v
	}
	v := p.br.Victim(set)
	copy(p.sr.rrpv[set], p.br.rrpv[set])
	return v
}

// NewPolicy builds a policy by Table I name.
func NewPolicy(name string, sets, ways int) Policy {
	switch name {
	case "SRRIP":
		return NewSRRIP(sets, ways)
	case "DRRIP":
		return NewDRRIP(sets, ways)
	default:
		return NewLRU(sets, ways)
	}
}
