package cache

import (
	"repro/internal/addr"
)

// StridePrefetcher is a classic reference-prediction-table prefetcher:
// it tracks per-region strides and, when a stride is confirmed twice,
// emits prefetch candidates ahead of the demand stream. It sits beside
// the L2 in the hierarchy (the usual place in SPEC-class simulations);
// the hierarchy installs its candidates quietly, so prefetched lines
// cost memory traffic but no core stalls.
type StridePrefetcher struct {
	entries []rptEntry
	degree  int // lines prefetched ahead on a confirmed stride

	Issued uint64 // candidates emitted
}

type rptEntry struct {
	tag      uint64 // region (4 KB page) tag
	lastAddr uint64 // last line number observed in the region
	stride   int64  // last observed stride in lines
	confid   uint8  // 0..3 confidence
	valid    bool
}

// NewStridePrefetcher builds a prefetcher with the given table size and
// prefetch degree.
func NewStridePrefetcher(entries, degree int) *StridePrefetcher {
	if entries < 1 {
		entries = 1
	}
	if degree < 1 {
		degree = 1
	}
	return &StridePrefetcher{entries: make([]rptEntry, entries), degree: degree}
}

// Observe feeds one demand access and returns the line base addresses to
// prefetch (possibly none). The returned slice is reused on the next
// call.
func (p *StridePrefetcher) Observe(a addr.Addr, buf []addr.Addr) []addr.Addr {
	buf = buf[:0]
	line := uint64(a) / 64
	region := uint64(a) >> 12 // 4 KB localization
	idx := region % uint64(len(p.entries))
	e := &p.entries[idx]
	if !e.valid || e.tag != region {
		*e = rptEntry{tag: region, lastAddr: line, valid: true}
		return buf
	}
	stride := int64(line) - int64(e.lastAddr)
	if stride == 0 {
		return buf
	}
	if stride == e.stride {
		if e.confid < 3 {
			e.confid++
		}
	} else {
		e.stride = stride
		e.confid = 0
	}
	e.lastAddr = line
	if e.confid < 2 {
		return buf
	}
	next := int64(line)
	for i := 0; i < p.degree; i++ {
		next += stride
		if next < 0 {
			break
		}
		buf = append(buf, addr.Addr(next*64))
		p.Issued++
	}
	return buf
}

// EnablePrefetch attaches a stride prefetcher after level li of the
// hierarchy: confirmed-stride candidates are installed into that level
// (and below stay untouched). Prefetch fills that miss the level go to
// the PrefetchSink, which the caller wires to the memory system.
func (h *Hierarchy) EnablePrefetch(li int, p *StridePrefetcher, sink func(addr.Addr)) {
	h.pf = p
	h.pfLevel = li
	h.pfSink = sink
}

// prefetch runs the prefetcher for a demand access.
func (h *Hierarchy) prefetch(a addr.Addr) {
	if h.pf == nil {
		return
	}
	h.pfBuf = h.pf.Observe(a, h.pfBuf)
	lvl := h.levels[h.pfLevel]
	for _, pa := range h.pfBuf {
		if lvl.Contains(pa) {
			continue
		}
		hit, ev, evicted := lvl.Access(pa, false)
		_ = hit
		if evicted && ev.Dirty {
			h.installDirty(h.pfLevel+1, ev.Addr)
		}
		if h.pfSink != nil {
			h.pfSink(pa)
		}
	}
}
