package cache

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/config"
)

// line is one cache line's bookkeeping.
type line struct {
	tag   uint64
	valid bool
	dirty bool
}

// Stats counts the events of a single cache level.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Writebacks uint64 // dirty evictions
}

// HitRate returns hits / (hits+misses), or 0 for an untouched cache.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is one set-associative write-back, write-allocate cache level.
type Cache struct {
	name      string
	sets      int
	ways      int
	lineBytes uint64
	lineShift uint
	policy    Policy
	lines     [][]line // [set][way]
	stats     Stats
}

// NewCache builds a cache level from its Table I description.
func NewCache(cfg config.CacheLevel) (*Cache, error) {
	if cfg.LineBytes == 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		return nil, fmt.Errorf("cache %s: line size %d not a power of two", cfg.Name, cfg.LineBytes)
	}
	linesTotal := cfg.SizeBytes / cfg.LineBytes
	if uint64(cfg.Ways) > linesTotal || linesTotal%uint64(cfg.Ways) != 0 {
		return nil, fmt.Errorf("cache %s: %d lines not divisible into %d ways", cfg.Name, linesTotal, cfg.Ways)
	}
	sets := int(linesTotal / uint64(cfg.Ways))
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache %s: %d sets not a power of two", cfg.Name, sets)
	}
	c := &Cache{
		name:      cfg.Name,
		sets:      sets,
		ways:      cfg.Ways,
		lineBytes: cfg.LineBytes,
		policy:    NewPolicy(cfg.Policy, sets, cfg.Ways),
		lines:     make([][]line, sets),
	}
	for s := cfg.LineBytes; s > 1; s >>= 1 {
		c.lineShift++
	}
	for i := range c.lines {
		c.lines[i] = make([]line, cfg.Ways)
	}
	return c, nil
}

// Name returns the level name (L1D, L2, ...).
func (c *Cache) Name() string { return c.name }

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

func (c *Cache) index(a addr.Addr) (set int, tag uint64) {
	lineNo := uint64(a) >> c.lineShift
	return int(lineNo % uint64(c.sets)), lineNo / uint64(c.sets)
}

// Eviction describes a line pushed out of a cache level.
type Eviction struct {
	Addr  addr.Addr // base address of the evicted line
	Dirty bool
}

// Access looks up a in the cache. On a miss the line is allocated
// (write-allocate) and the victim, if any, is returned. write marks the
// line dirty.
func (c *Cache) Access(a addr.Addr, write bool) (hit bool, ev Eviction, evicted bool) {
	set, tag := c.index(a)
	row := c.lines[set]
	for w := range row {
		if row[w].valid && row[w].tag == tag {
			c.stats.Hits++
			c.policy.OnHit(set, w)
			if write {
				row[w].dirty = true
			}
			return true, Eviction{}, false
		}
	}
	c.stats.Misses++
	// Find an invalid way first.
	way := -1
	for w := range row {
		if !row[w].valid {
			way = w
			break
		}
	}
	if way == -1 {
		way = c.policy.Victim(set)
		victim := row[way]
		ev = Eviction{Addr: c.lineAddr(set, victim.tag), Dirty: victim.dirty}
		evicted = true
		if victim.dirty {
			c.stats.Writebacks++
		}
	}
	row[way] = line{tag: tag, valid: true, dirty: write}
	c.policy.OnFill(set, way)
	return false, ev, evicted
}

// Contains reports whether the line holding a is resident (no side
// effects).
func (c *Cache) Contains(a addr.Addr) bool {
	set, tag := c.index(a)
	for _, l := range c.lines[set] {
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

func (c *Cache) lineAddr(set int, tag uint64) addr.Addr {
	return addr.Addr((tag*uint64(c.sets) + uint64(set)) << c.lineShift)
}

// Hierarchy chains cache levels; Access walks L1 -> LLC and reports
// whether the request missed the LLC along with any dirty line evicted
// from the LLC (which must be written back to memory).
type Hierarchy struct {
	levels []*Cache
	lats   []uint64
	wbBuf  []addr.Addr

	// Optional stride prefetcher (EnablePrefetch).
	pf      *StridePrefetcher
	pfLevel int
	pfSink  func(addr.Addr)
	pfBuf   []addr.Addr
}

// NewHierarchy builds the full hierarchy from Table I cache descriptions,
// ordered innermost first.
func NewHierarchy(levels []config.CacheLevel) (*Hierarchy, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("cache: empty hierarchy")
	}
	h := &Hierarchy{}
	for _, cfg := range levels {
		c, err := NewCache(cfg)
		if err != nil {
			return nil, err
		}
		h.levels = append(h.levels, c)
		h.lats = append(h.lats, cfg.LatencyCyc)
	}
	return h, nil
}

// Result describes the outcome of one load/store through the hierarchy.
type Result struct {
	HitLevel   int    // 0-based level index, or -1 on LLC miss
	HitLatency uint64 // hit latency in CPU cycles when HitLevel >= 0
	// Writebacks are dirty lines evicted past the LLC that must be written
	// to memory. The slice is reused by the next Access call.
	Writebacks []addr.Addr
}

// Access sends a load/store through the hierarchy. Lower levels allocate
// on miss (non-inclusive, write-back). Dirty evictions cascade: a dirty
// line evicted from Li is written into Li+1; only LLC dirty evictions
// escape to memory and are reported in Result.Writebacks.
func (h *Hierarchy) Access(a addr.Addr, write bool) Result {
	h.wbBuf = h.wbBuf[:0]
	h.prefetch(a)
	llc := len(h.levels) - 1
	res := Result{HitLevel: -1}
	for i, c := range h.levels {
		hit, ev, evicted := c.Access(a, write)
		// Cascade this level's dirty eviction into the next level.
		if evicted && ev.Dirty {
			if i == llc {
				h.wbBuf = append(h.wbBuf, ev.Addr)
			} else {
				h.installDirty(i+1, ev.Addr)
			}
		}
		if hit {
			res.HitLevel = i
			res.HitLatency = h.lats[i]
			break
		}
	}
	res.Writebacks = h.wbBuf
	return res
}

// installDirty writes an evicted dirty line into level i, cascading
// further dirty evictions outward; LLC dirty evictions are collected as
// memory writebacks.
func (h *Hierarchy) installDirty(i int, a addr.Addr) {
	for ; i < len(h.levels); i++ {
		_, ev, evicted := h.levels[i].Access(a, true)
		if !evicted || !ev.Dirty {
			return
		}
		a = ev.Addr
	}
	h.wbBuf = append(h.wbBuf, a)
}

// Levels returns the cache levels, innermost first.
func (h *Hierarchy) Levels() []*Cache { return h.levels }

// LLC returns the last-level cache.
func (h *Hierarchy) LLC() *Cache { return h.levels[len(h.levels)-1] }

// MissLatencyBase returns the cycles spent traversing all levels before a
// request reaches memory (sum of hit latencies — the lookup path).
func (h *Hierarchy) MissLatencyBase() uint64 {
	var total uint64
	for _, l := range h.lats {
		total += l
	}
	return total
}
