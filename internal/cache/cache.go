package cache

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/config"
)

// Stats counts the events of a single cache level.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Writebacks uint64 // dirty evictions
}

// HitRate returns hits / (hits+misses), or 0 for an untouched cache.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// policyKind selects the replacement policy compiled into the access
// loop. The standalone Policy implementations in policy.go describe the
// same algorithms behind an interface; the cache keeps its policy state
// in flat arrays and switches on the kind instead, so the hit/victim/fill
// path runs without dynamic dispatch or per-set slice chasing. Decisions
// are identical to the interface implementations.
type policyKind uint8

const (
	policyLRU policyKind = iota
	policySRRIP
	policyDRRIP
)

const (
	lineValid     = 1 << 0
	lineDirty     = 1 << 1
	lineShiftBits = 2 // tag occupies bits [2,64)
)

// Cache is one set-associative write-back, write-allocate cache level.
// Line state is struct-of-arrays: each line is a single packed word
// (tag<<2 | dirty | valid) in one flat slice indexed by set*ways+way, so a
// tag probe scans one contiguous run of machine words with one load per
// way.
type Cache struct {
	name      string
	sets      int
	ways      int
	lineBytes uint64
	lineShift uint
	setMask   uint64 // sets-1 (sets is a power of two)
	setShift  uint   // log2(sets)

	lines []uint64 // [set*ways+way]: tag<<2 | lineDirty | lineValid

	kind policyKind
	// LRU state: per-line stamps against a per-set logical clock.
	stamp []uint64 // [set*ways+way]
	clock []uint64 // [set]
	// RRIP state, shared by SRRIP and DRRIP. (The original DRRIP kept one
	// RRPV array per component policy, but every operation left the two
	// arrays equal, so one array carries both.)
	rrpv  []uint8 // [set*ways+way]
	fills uint64  // BRRIP bimodal fill counter (DRRIP only)
	psel  int     // DRRIP set-dueling selector
	stats Stats
}

// drripDuelMask picks the leader sets: set&mask==0 leads SRRIP, ==1 leads
// BRRIP (matching the standalone DRRIP policy).
const drripDuelMask = 31

// NewCache builds a cache level from its Table I description.
func NewCache(cfg config.CacheLevel) (*Cache, error) {
	if cfg.LineBytes == 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		return nil, fmt.Errorf("cache %s: line size %d not a power of two", cfg.Name, cfg.LineBytes)
	}
	linesTotal := cfg.SizeBytes / cfg.LineBytes
	if uint64(cfg.Ways) > linesTotal || linesTotal%uint64(cfg.Ways) != 0 {
		return nil, fmt.Errorf("cache %s: %d lines not divisible into %d ways", cfg.Name, linesTotal, cfg.Ways)
	}
	sets := int(linesTotal / uint64(cfg.Ways))
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache %s: %d sets not a power of two", cfg.Name, sets)
	}
	c := &Cache{
		name:      cfg.Name,
		sets:      sets,
		ways:      cfg.Ways,
		lineBytes: cfg.LineBytes,
		setMask:   uint64(sets - 1),
		lines:     make([]uint64, sets*cfg.Ways),
	}
	for s := cfg.LineBytes; s > 1; s >>= 1 {
		c.lineShift++
	}
	for s := sets; s > 1; s >>= 1 {
		c.setShift++
	}
	switch cfg.Policy {
	case "SRRIP":
		c.kind = policySRRIP
	case "DRRIP":
		c.kind = policyDRRIP
	default:
		c.kind = policyLRU
	}
	if c.kind == policyLRU {
		c.stamp = make([]uint64, sets*cfg.Ways)
		c.clock = make([]uint64, sets)
	} else {
		c.rrpv = make([]uint8, sets*cfg.Ways)
		for i := range c.rrpv {
			c.rrpv[i] = rrpvMax
		}
	}
	return c, nil
}

// Name returns the level name (L1D, L2, ...).
func (c *Cache) Name() string { return c.name }

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

func (c *Cache) index(a addr.Addr) (set int, tag uint64) {
	lineNo := uint64(a) >> c.lineShift
	return int(lineNo & c.setMask), lineNo >> c.setShift
}

// Eviction describes a line pushed out of a cache level.
type Eviction struct {
	Addr  addr.Addr // base address of the evicted line
	Dirty bool
}

// onHit updates replacement state for a hit on way of set.
func (c *Cache) onHit(set, base, way int) {
	if c.kind == policyLRU {
		c.clock[set]++
		c.stamp[base+way] = c.clock[set]
		return
	}
	c.rrpv[base+way] = 0
}

// onFill updates replacement state for a fill into way of set.
func (c *Cache) onFill(set, base, way int) {
	switch c.kind {
	case policyLRU:
		c.clock[set]++
		c.stamp[base+way] = c.clock[set]
	case policySRRIP:
		c.rrpv[base+way] = rrpvMax - 1 // long re-reference interval
	default: // DRRIP
		// A fill means the previous access to this set missed; leaders vote.
		switch set & drripDuelMask {
		case 0:
			if c.psel < 512 {
				c.psel++ // SRRIP leader missed: penalize SRRIP
			}
		case 1:
			if c.psel > -512 {
				c.psel--
			}
		}
		if c.useSRRIP(set) {
			c.rrpv[base+way] = rrpvMax - 1
		} else {
			// BRRIP: mostly distant (rrpvMax), occasionally long.
			c.fills++
			if c.fills%32 == 0 {
				c.rrpv[base+way] = rrpvMax - 1
			} else {
				c.rrpv[base+way] = rrpvMax
			}
		}
	}
}

func (c *Cache) useSRRIP(set int) bool {
	switch set & drripDuelMask {
	case 0:
		return true
	case 1:
		return false
	}
	return c.psel <= 0
}

// victim selects the way to evict from set. Every way is valid.
func (c *Cache) victim(set, base int) int {
	if c.kind == policyLRU {
		row := c.stamp[base : base+c.ways]
		victim, min := 0, row[0]
		for w := 1; w < len(row); w++ {
			if row[w] < min {
				victim, min = w, row[w]
			}
		}
		return victim
	}
	// RRIP aging, collapsed: repeatedly scanning for rrpvMax and aging
	// everything by one until a line reaches it is the same as aging every
	// line by the distance of the oldest line and evicting the first line
	// that was at the maximum.
	row := c.rrpv[base : base+c.ways]
	victim, max := 0, row[0]
	for w := 1; w < len(row); w++ {
		if row[w] > max {
			victim, max = w, row[w]
		}
	}
	if d := rrpvMax - max; d > 0 {
		for w := range row {
			row[w] += d
		}
	}
	return victim
}

// Access looks up a in the cache. On a miss the line is allocated
// (write-allocate) and the victim, if any, is returned. write marks the
// line dirty.
func (c *Cache) Access(a addr.Addr, write bool) (hit bool, ev Eviction, evicted bool) {
	set, tag := c.index(a)
	base := set * c.ways
	row := c.lines[base : base+c.ways]
	// One pass finds both a hit and the first invalid way. Folding the
	// dirty bit makes the probe a single compare: only a valid line with
	// a matching tag can equal the target (the valid bit differs
	// otherwise).
	target := tag<<lineShiftBits | lineDirty | lineValid
	way := -1
	for w, v := range row {
		if v|lineDirty == target {
			c.stats.Hits++
			c.onHit(set, base, w)
			if write {
				row[w] = v | lineDirty
			}
			return true, Eviction{}, false
		}
		if v&lineValid == 0 && way == -1 {
			way = w
		}
	}
	c.stats.Misses++
	if way == -1 {
		way = c.victim(set, base)
		old := row[way]
		dirty := old&lineDirty != 0
		ev = Eviction{Addr: c.lineAddr(set, old>>lineShiftBits), Dirty: dirty}
		evicted = true
		if dirty {
			c.stats.Writebacks++
		}
	}
	v := tag<<lineShiftBits | lineValid
	if write {
		v |= lineDirty
	}
	row[way] = v
	c.onFill(set, base, way)
	return false, ev, evicted
}

// Contains reports whether the line holding a is resident (no side
// effects).
func (c *Cache) Contains(a addr.Addr) bool {
	set, tag := c.index(a)
	base := set * c.ways
	target := tag<<lineShiftBits | lineValid
	for _, v := range c.lines[base : base+c.ways] {
		if v|lineDirty == target|lineDirty {
			return true
		}
	}
	return false
}

func (c *Cache) lineAddr(set int, tag uint64) addr.Addr {
	return addr.Addr((tag<<c.setShift | uint64(set)) << c.lineShift)
}

// Hierarchy chains cache levels; Access walks L1 -> LLC and reports
// whether the request missed the LLC along with any dirty line evicted
// from the LLC (which must be written back to memory).
type Hierarchy struct {
	levels []*Cache
	lats   []uint64
	wbBuf  []addr.Addr

	// Optional stride prefetcher (EnablePrefetch).
	pf      *StridePrefetcher
	pfLevel int
	pfSink  func(addr.Addr)
	pfBuf   []addr.Addr
}

// NewHierarchy builds the full hierarchy from Table I cache descriptions,
// ordered innermost first.
func NewHierarchy(levels []config.CacheLevel) (*Hierarchy, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("cache: empty hierarchy")
	}
	h := &Hierarchy{}
	for _, cfg := range levels {
		c, err := NewCache(cfg)
		if err != nil {
			return nil, err
		}
		h.levels = append(h.levels, c)
		h.lats = append(h.lats, cfg.LatencyCyc)
	}
	return h, nil
}

// Result describes the outcome of one load/store through the hierarchy.
type Result struct {
	HitLevel   int    // 0-based level index, or -1 on LLC miss
	HitLatency uint64 // hit latency in CPU cycles when HitLevel >= 0
	// Writebacks are dirty lines evicted past the LLC that must be written
	// to memory. The slice is reused by the next Access call.
	Writebacks []addr.Addr
}

// Access sends a load/store through the hierarchy. Lower levels allocate
// on miss (non-inclusive, write-back). Dirty evictions cascade: a dirty
// line evicted from Li is written into Li+1; only LLC dirty evictions
// escape to memory and are reported in Result.Writebacks.
func (h *Hierarchy) Access(a addr.Addr, write bool) Result {
	h.wbBuf = h.wbBuf[:0]
	if h.pf != nil {
		h.prefetch(a)
	}
	llc := len(h.levels) - 1
	res := Result{HitLevel: -1}
	for i, c := range h.levels {
		hit, ev, evicted := c.Access(a, write)
		// Cascade this level's dirty eviction into the next level.
		if evicted && ev.Dirty {
			if i == llc {
				h.wbBuf = append(h.wbBuf, ev.Addr)
			} else {
				h.installDirty(i+1, ev.Addr)
			}
		}
		if hit {
			res.HitLevel = i
			res.HitLatency = h.lats[i]
			break
		}
	}
	res.Writebacks = h.wbBuf
	return res
}

// installDirty writes an evicted dirty line into level i, cascading
// further dirty evictions outward; LLC dirty evictions are collected as
// memory writebacks.
func (h *Hierarchy) installDirty(i int, a addr.Addr) {
	for ; i < len(h.levels); i++ {
		_, ev, evicted := h.levels[i].Access(a, true)
		if !evicted || !ev.Dirty {
			return
		}
		a = ev.Addr
	}
	h.wbBuf = append(h.wbBuf, a)
}

// Levels returns the cache levels, innermost first.
func (h *Hierarchy) Levels() []*Cache { return h.levels }

// LLC returns the last-level cache.
func (h *Hierarchy) LLC() *Cache { return h.levels[len(h.levels)-1] }

// MissLatencyBase returns the cycles spent traversing all levels before a
// request reaches memory (sum of hit latencies — the lookup path).
func (h *Hierarchy) MissLatencyBase() uint64 {
	var total uint64
	for _, l := range h.lats {
		total += l
	}
	return total
}
