package cache

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/config"
)

func smallCache(t *testing.T, policy string) *Cache {
	t.Helper()
	c, err := NewCache(config.CacheLevel{
		Name: "test", SizeBytes: 8 * 64, Ways: 2, LineBytes: 64,
		Policy: policy, LatencyCyc: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewCacheRejectsBadGeometry(t *testing.T) {
	cases := []config.CacheLevel{
		{Name: "badline", SizeBytes: 1024, Ways: 2, LineBytes: 48},
		{Name: "badways", SizeBytes: 192, Ways: 4, LineBytes: 64},
		{Name: "badsets", SizeBytes: 3 * 64 * 2, Ways: 2, LineBytes: 64},
	}
	for _, cfg := range cases {
		if _, err := NewCache(cfg); err == nil {
			t.Errorf("NewCache(%q) accepted invalid geometry", cfg.Name)
		}
	}
}

func TestHitAfterFill(t *testing.T) {
	c := smallCache(t, "LRU")
	a := addr.Addr(0x1000)
	if hit, _, _ := c.Access(a, false); hit {
		t.Error("cold access hit")
	}
	if hit, _, _ := c.Access(a, false); !hit {
		t.Error("second access missed")
	}
	if hit, _, _ := c.Access(a+63, false); !hit {
		t.Error("same-line access missed")
	}
	if hit, _, _ := c.Access(a+64, false); hit {
		t.Error("next-line access hit")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 {
		t.Errorf("stats = %+v, want 2 hits 2 misses", st)
	}
}

func TestLRUEvictsOldest(t *testing.T) {
	c := smallCache(t, "LRU") // 4 sets x 2 ways
	// Three lines mapping to set 0: line numbers 0, 4, 8 (4 sets).
	a0, a4, a8 := addr.Addr(0), addr.Addr(4*64), addr.Addr(8*64)
	c.Access(a0, false)
	c.Access(a4, false)
	c.Access(a0, false) // a0 now MRU
	_, ev, evicted := c.Access(a8, false)
	if !evicted {
		t.Fatal("full set did not evict")
	}
	if ev.Addr != a4 {
		t.Errorf("evicted %#x, want %#x (LRU)", uint64(ev.Addr), uint64(a4))
	}
	if !c.Contains(a0) || c.Contains(a4) || !c.Contains(a8) {
		t.Error("residency after eviction wrong")
	}
}

func TestDirtyEvictionReported(t *testing.T) {
	c := smallCache(t, "LRU")
	a0, a4, a8 := addr.Addr(0), addr.Addr(4*64), addr.Addr(8*64)
	c.Access(a0, true) // dirty
	c.Access(a4, false)
	c.Access(a8, false) // evicts a0 (LRU), dirty
	st := c.Stats()
	if st.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", st.Writebacks)
	}
}

func TestSRRIPHitPromotion(t *testing.T) {
	c := smallCache(t, "SRRIP")
	a0, a4, a8 := addr.Addr(0), addr.Addr(4*64), addr.Addr(8*64)
	c.Access(a0, false)
	c.Access(a4, false)
	c.Access(a0, false) // promote a0 to RRPV 0
	_, ev, evicted := c.Access(a8, false)
	if !evicted {
		t.Fatal("no eviction from full set")
	}
	if ev.Addr != a4 {
		t.Errorf("SRRIP evicted %#x, want non-promoted %#x", uint64(ev.Addr), uint64(a4))
	}
}

func TestDRRIPBehavesAsCache(t *testing.T) {
	c, err := NewCache(config.CacheLevel{
		Name: "drrip", SizeBytes: 64 * addr.KiB, Ways: 8, LineBytes: 64,
		Policy: "DRRIP", LatencyCyc: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A working set that fits must eventually hit ~100%.
	for pass := 0; pass < 4; pass++ {
		for i := 0; i < 256; i++ {
			c.Access(addr.Addr(i*64), false)
		}
	}
	st := c.Stats()
	if st.Hits < 3*256 {
		t.Errorf("DRRIP resident working set hits = %d, want >= %d", st.Hits, 3*256)
	}
}

func TestPolicyVictimAlwaysInRange(t *testing.T) {
	for _, name := range []string{"LRU", "SRRIP", "DRRIP"} {
		p := NewPolicy(name, 16, 4)
		for s := 0; s < 16; s++ {
			for w := 0; w < 4; w++ {
				p.OnFill(s, w)
			}
			for i := 0; i < 8; i++ {
				v := p.Victim(s)
				if v < 0 || v >= 4 {
					t.Fatalf("%s victim %d out of range", name, v)
				}
				p.OnFill(s, v)
				p.OnHit(s, (v+1)%4)
			}
		}
	}
}

func newHier(t *testing.T) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy(config.Default().Caches)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHierarchyMissThenHit(t *testing.T) {
	h := newHier(t)
	a := addr.Addr(0x12340)
	r := h.Access(a, false)
	if r.HitLevel != -1 {
		t.Fatalf("cold access hit level %d", r.HitLevel)
	}
	r = h.Access(a, false)
	if r.HitLevel != 0 {
		t.Errorf("second access hit level %d, want 0 (L1)", r.HitLevel)
	}
	if r.HitLatency != 4 {
		t.Errorf("L1 hit latency %d, want 4", r.HitLatency)
	}
}

func TestHierarchyL2Hit(t *testing.T) {
	h := newHier(t)
	base := addr.Addr(0)
	// Fill L1 (64KB, 1024 lines) far beyond capacity with a 128KB sweep;
	// early lines fall out of L1 but stay in L2 (256KB).
	for i := 0; i < 2048; i++ {
		h.Access(base+addr.Addr(i*64), false)
	}
	r := h.Access(base, false)
	if r.HitLevel != 1 && r.HitLevel != 2 {
		t.Errorf("swept-out line hit level %d, want L2 or L3", r.HitLevel)
	}
}

func TestHierarchyWritebackEscapes(t *testing.T) {
	h := newHier(t)
	// Dirty a large region far beyond LLC capacity (8MB): 16MB of lines.
	lines := uint64(16*addr.MiB) / 64
	wbs := 0
	for i := uint64(0); i < lines; i++ {
		r := h.Access(addr.Addr(i*64), true)
		wbs += len(r.Writebacks)
	}
	if wbs == 0 {
		t.Error("no writebacks escaped the LLC after dirtying 2x LLC capacity")
	}
}

func TestHierarchyMissLatencyBase(t *testing.T) {
	h := newHier(t)
	if got, want := h.MissLatencyBase(), uint64(4+12+38); got != want {
		t.Errorf("MissLatencyBase = %d, want %d", got, want)
	}
}

func TestHierarchyLLCFilter(t *testing.T) {
	// A tiny working set must produce no LLC misses after warmup.
	h := newHier(t)
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < 64; i++ {
			h.Access(addr.Addr(i*64), false)
		}
	}
	miss0 := h.LLC().Stats().Misses
	for i := 0; i < 64; i++ {
		h.Access(addr.Addr(i*64), false)
	}
	if got := h.LLC().Stats().Misses; got != miss0 {
		t.Errorf("LLC misses grew from %d to %d on resident set", miss0, got)
	}
}

func TestStridePrefetcherDetectsStride(t *testing.T) {
	p := NewStridePrefetcher(64, 2)
	var buf []addr.Addr
	// Sequential 64 B stream within one 4 KB region: stride confirmed on
	// the third access, prefetches from the fourth observation onward.
	got := 0
	for i := 0; i < 8; i++ {
		buf = p.Observe(addr.Addr(i*64), buf)
		got += len(buf)
	}
	if got == 0 {
		t.Fatal("sequential stream produced no prefetches")
	}
	if p.Issued == 0 {
		t.Error("issued counter not updated")
	}
	// Candidates continue the stride.
	buf = p.Observe(addr.Addr(8*64), buf)
	if len(buf) != 2 || buf[0] != addr.Addr(9*64) || buf[1] != addr.Addr(10*64) {
		t.Errorf("candidates = %v", buf)
	}
}

func TestStridePrefetcherIgnoresRandom(t *testing.T) {
	p := NewStridePrefetcher(64, 2)
	var buf []addr.Addr
	addrs := []uint64{0, 7, 3, 29, 11, 23, 5, 31}
	issued := 0
	for _, a := range addrs {
		buf = p.Observe(addr.Addr(a*64), buf)
		issued += len(buf)
	}
	if issued > 2 {
		t.Errorf("random stream issued %d prefetches", issued)
	}
}

func TestHierarchyPrefetchReducesMisses(t *testing.T) {
	mk := func(pf bool) uint64 {
		h, err := NewHierarchy(config.Default().Caches)
		if err != nil {
			t.Fatal(err)
		}
		if pf {
			h.EnablePrefetch(1, NewStridePrefetcher(256, 4), nil)
		}
		// A long sequential stream beyond every cache.
		for i := 0; i < 300000; i++ {
			h.Access(addr.Addr(i*64), false)
		}
		return h.LLC().Stats().Misses
	}
	without := mk(false)
	with := mk(true)
	if with >= without {
		t.Errorf("prefetching did not reduce LLC misses: %d vs %d", with, without)
	}
}

func TestPrefetchSinkCalled(t *testing.T) {
	h, err := NewHierarchy(config.Default().Caches)
	if err != nil {
		t.Fatal(err)
	}
	var sunk int
	h.EnablePrefetch(1, NewStridePrefetcher(64, 2), func(addr.Addr) { sunk++ })
	for i := 0; i < 64; i++ {
		h.Access(addr.Addr(i*64), false)
	}
	if sunk == 0 {
		t.Error("sink never called for prefetch fills")
	}
}
