// Package config holds the system configuration from the paper's Table I —
// core, cache hierarchy, HBM2 and DDR4 device parameters — plus per-design
// knobs. Everything is expressed in plain physical units (MHz, ns, mA, V);
// the timing models convert to CPU cycles.
package config

import (
	"fmt"

	"repro/internal/addr"
)

// Core describes the processor core model (Table I: ARM A72, 3600 MHz).
type Core struct {
	FreqMHz uint64  // core clock
	CPIBase float64 // cycles per instruction with an ideal memory system
	MLP     int     // max overlapping LLC misses (interval model window)
}

// CycleNS returns the duration of one core cycle in nanoseconds.
func (c Core) CycleNS() float64 { return 1e3 / float64(c.FreqMHz) }

// CacheLevel describes one SRAM cache level.
type CacheLevel struct {
	Name       string
	SizeBytes  uint64
	Ways       int
	LineBytes  uint64
	Policy     string // "LRU", "SRRIP", "DRRIP"
	LatencyCyc uint64 // hit latency in core cycles
}

// DRAMTiming captures the first-order timing of one DRAM-like device
// (Table I gives tCAS-tRCD-tRP in device clocks; refresh and turnaround
// use standard values for the densities involved).
type DRAMTiming struct {
	ClockMHz uint64 // device command/data clock (data rate = 2x for DDR)
	TCAS     uint64 // column access strobe latency, device clocks
	TRCD     uint64 // row-to-column delay
	TRP      uint64 // row precharge
	TREFI    uint64 // average refresh interval, device clocks (0 = no refresh)
	TRFC     uint64 // refresh cycle time, device clocks
	TWTR     uint64 // write-to-read turnaround, device clocks
}

// DRAMPower holds Micron-style IDD currents (mA) and supply voltage used by
// the dynamic-energy model. Names follow Table I.
type DRAMPower struct {
	VDD   float64 // volts
	IDD0  float64 // activate-precharge current
	IDD2P float64 // precharge power-down
	IDD2N float64 // precharge standby
	IDD3P float64 // active power-down
	IDD3N float64 // active standby
	IDD4W float64 // write burst
	IDD4R float64 // read burst
	IDD5  float64 // refresh
	IDD6  float64 // self refresh
}

// DRAMDevice describes one memory device: geometry, timing and power.
type DRAMDevice struct {
	Name          string
	CapacityBytes uint64
	Channels      int
	ChannelBits   int    // data bus width per channel
	Banks         int    // banks per channel
	RowBytes      uint64 // row-buffer (page) size per bank
	InterleaveB   uint64 // channel interleave granularity
	Timing        DRAMTiming
	Power         DRAMPower
}

// PeakBandwidthGBs returns the aggregate peak bandwidth in GB/s assuming a
// double data rate bus.
func (d DRAMDevice) PeakBandwidthGBs() float64 {
	bytesPerClock := float64(d.Channels) * float64(d.ChannelBits) / 8 * 2
	return bytesPerClock * float64(d.Timing.ClockMHz) * 1e6 / 1e9
}

// Design identifies a hybrid memory design under test.
type Design string

// The designs evaluated in the paper (Figures 7 and 8).
const (
	DesignBumblebee Design = "bumblebee"
	DesignHybrid2   Design = "hybrid2"
	DesignChameleon Design = "chameleon"
	DesignBanshee   Design = "banshee"
	DesignAlloy     Design = "alloy"
	DesignUnison    Design = "unison"
	DesignCacheOnly Design = "c-only"
	DesignPOMOnly   Design = "m-only"
	DesignNoHBM     Design = "no-hbm"
)

// BumblebeeOptions are the ablation switches used for Figure 7.
type BumblebeeOptions struct {
	FixedRatio      bool    // pin the cHBM share at FixedCacheRatio (C-Only/25%-C/50%-C/M-Only)
	FixedCacheRatio float64 // cHBM share of HBM when FixedRatio is set (0=M-Only, 1=C-Only)
	NoMultiplex     bool    // separate cHBM/mHBM spaces (No-Multi)
	MetadataInHBM   bool    // metadata stored in HBM, not SRAM (Meta-H)
	AllocAllDRAM    bool    // allocate every page in off-chip DRAM (Alloc-D)
	AllocAllHBM     bool    // allocate every page in HBM first (Alloc-H)
	NoHMF           bool    // disable high-memory-footprint movement (No-HMF)
	HotQueueDepth   int     // recently-accessed off-chip pages tracked per set
	ZombieWindow    uint64  // accesses after which an unchanged head page is a zombie
}

// Faults configures the deterministic RAS fault injector
// (internal/faults): transient bit errors with ECC correct/detect-retry
// semantics, permanent HBM frame failures that retire page frames
// mid-run, and thermal bandwidth-throttling windows. Rates are expressed
// per million HBM accesses so they are independent of run length and
// capacity scale; the injector draws from a seeded generator so the fault
// schedule is a pure function of the (design, workload, seed) cell.
type Faults struct {
	Enabled bool   // master switch; false leaves every HBM access untouched
	Seed    uint64 // extra seed folded into the per-cell seed (0 = cell seed only)

	// Transient errors: expected ECC events per million HBM accesses.
	// A DetectFrac share is detect-and-retry (the access is re-issued
	// after RetryBackoffCycles); the rest are corrected in-line for
	// CorrectCycles extra latency.
	TransientPer1M     float64
	DetectFrac         float64
	CorrectCycles      uint64
	RetryBackoffCycles uint64

	// Permanent failures: expected frame retirements per million HBM
	// accesses. The frame under access fails; at most MaxRetiredFrac of
	// all HBM frames may retire over a run (predictive retirement keeps
	// the device serving past that point in the field too).
	FrameFailPer1M float64
	MaxRetiredFrac float64

	// Thermal throttling: every ThrottlePeriod HBM accesses, the first
	// ThrottleDuty share of the period is a throttle window during which
	// each access pays ThrottlePenaltyCycles extra (reduced bandwidth,
	// first order).
	ThrottlePeriod        uint64
	ThrottleDuty          float64
	ThrottlePenaltyCycles uint64
}

// System is a complete simulated machine.
type System struct {
	Core   Core
	Caches []CacheLevel // ordered L1 .. LLC
	HBM    DRAMDevice
	DRAM   DRAMDevice

	PageBytes   uint64  // migration granularity
	BlockBytes  uint64  // caching granularity
	HBMWays     uint64  // HBM pages per remapping set
	SRAMMetaNS  float64 // metadata lookup latency when held in SRAM
	MoveBatch   int     // remapping sets flushed together by HMF(5)
	PageFaultNS float64 // OS swap-in penalty for pages beyond OS-visible memory

	Bumblebee BumblebeeOptions
	Faults    Faults
}

// DefaultFaults returns the fault-injection knobs at their reference
// values with injection disabled: HBM2-plausible ECC behaviour (most
// transients corrected in-line, a quarter detect-and-retry) and a 50%
// retirement cap. Callers enable injection by setting Enabled and the
// per-1M rates.
func DefaultFaults() Faults {
	return Faults{
		DetectFrac:            0.25,
		CorrectCycles:         4,
		RetryBackoffCycles:    64,
		MaxRetiredFrac:        0.5,
		ThrottlePenaltyCycles: 8,
	}
}

// Default returns the paper's Table I configuration with Bumblebee's best
// design point (2 KB blocks, 64 KB pages, 8-way sets).
func Default() System {
	return System{
		Core: Core{FreqMHz: 3600, CPIBase: 0.6, MLP: 8},
		Caches: []CacheLevel{
			{Name: "L1D", SizeBytes: 64 * addr.KiB, Ways: 4, LineBytes: 64, Policy: "LRU", LatencyCyc: 4},
			{Name: "L2", SizeBytes: 256 * addr.KiB, Ways: 8, LineBytes: 64, Policy: "SRRIP", LatencyCyc: 12},
			{Name: "L3", SizeBytes: 8 * addr.MiB, Ways: 16, LineBytes: 64, Policy: "DRRIP", LatencyCyc: 38},
		},
		HBM: DRAMDevice{
			Name:          "HBM2",
			CapacityBytes: 1 * addr.GiB,
			Channels:      8,
			ChannelBits:   128,
			Banks:         8,
			RowBytes:      2 * addr.KiB,
			InterleaveB:   512,
			Timing:        DRAMTiming{ClockMHz: 1000, TCAS: 7, TRCD: 7, TRP: 7, TREFI: 3900, TRFC: 260, TWTR: 4},
			Power: DRAMPower{
				VDD: 1.2, IDD0: 65,
				IDD2P: 28, IDD2N: 40,
				IDD3P: 40, IDD3N: 55,
				IDD4W: 500, IDD4R: 390,
				IDD5: 250, IDD6: 31,
			},
		},
		DRAM: DRAMDevice{
			Name:          "DDR4-3200",
			CapacityBytes: 10 * addr.GiB,
			Channels:      2,
			ChannelBits:   64,
			Banks:         8,
			RowBytes:      8 * addr.KiB,
			InterleaveB:   4 * addr.KiB,
			Timing:        DRAMTiming{ClockMHz: 1600, TCAS: 22, TRCD: 22, TRP: 22, TREFI: 12480, TRFC: 560, TWTR: 12},
			Power: DRAMPower{
				VDD: 1.2, IDD0: 52,
				IDD2P: 25, IDD2N: 37,
				IDD3P: 38, IDD3N: 47,
				IDD4W: 130, IDD4R: 143,
				IDD5: 250, IDD6: 30,
			},
		},
		PageBytes:   64 * addr.KiB,
		BlockBytes:  2 * addr.KiB,
		HBMWays:     8,
		SRAMMetaNS:  1.0,
		MoveBatch:   4,
		PageFaultNS: 2000,
		Bumblebee: BumblebeeOptions{
			HotQueueDepth: 8,
			ZombieWindow:  4096,
		},
	}
}

// Validate checks internal consistency of the configuration.
func (s System) Validate() error {
	if s.Core.FreqMHz == 0 {
		return fmt.Errorf("config: core frequency must be positive")
	}
	if s.Core.CPIBase <= 0 {
		return fmt.Errorf("config: CPI base must be positive")
	}
	if s.Core.MLP <= 0 {
		return fmt.Errorf("config: MLP must be positive")
	}
	if len(s.Caches) == 0 {
		return fmt.Errorf("config: at least one cache level required")
	}
	for _, c := range s.Caches {
		if c.SizeBytes == 0 || c.Ways <= 0 || c.LineBytes == 0 {
			return fmt.Errorf("config: cache %q has zero size, ways, or line", c.Name)
		}
		if c.SizeBytes%(uint64(c.Ways)*c.LineBytes) != 0 {
			return fmt.Errorf("config: cache %q size not divisible by ways*line", c.Name)
		}
		switch c.Policy {
		case "LRU", "SRRIP", "DRRIP":
		default:
			return fmt.Errorf("config: cache %q has unknown policy %q", c.Name, c.Policy)
		}
	}
	for _, d := range []DRAMDevice{s.HBM, s.DRAM} {
		if d.CapacityBytes == 0 || d.Channels <= 0 || d.Banks <= 0 {
			return fmt.Errorf("config: device %q has zero capacity, channels, or banks", d.Name)
		}
		if d.Timing.ClockMHz == 0 {
			return fmt.Errorf("config: device %q has zero clock", d.Name)
		}
		if d.InterleaveB == 0 || d.RowBytes == 0 {
			return fmt.Errorf("config: device %q has zero interleave or row size", d.Name)
		}
	}
	if _, err := addr.NewGeometry(s.PageBytes, s.BlockBytes, s.DRAM.CapacityBytes, s.HBM.CapacityBytes, s.HBMWays); err != nil {
		return fmt.Errorf("config: %v", err)
	}
	if s.Bumblebee.FixedCacheRatio < 0 || s.Bumblebee.FixedCacheRatio > 1 {
		return fmt.Errorf("config: fixed cache ratio %f out of [0,1]", s.Bumblebee.FixedCacheRatio)
	}
	if s.Bumblebee.AllocAllDRAM && s.Bumblebee.AllocAllHBM {
		return fmt.Errorf("config: Alloc-D and Alloc-H are mutually exclusive")
	}
	return s.Faults.Validate()
}

// Validate checks the fault-injection knobs. Bad values are rejected even
// when injection is disabled, so a config that flips Enabled on later is
// already known-good.
func (f Faults) Validate() error {
	if f.TransientPer1M < 0 || f.FrameFailPer1M < 0 {
		return fmt.Errorf("config: fault rates must be non-negative (transient %f, frame %f)",
			f.TransientPer1M, f.FrameFailPer1M)
	}
	for _, frac := range []struct {
		name string
		v    float64
	}{
		{"fault detect fraction", f.DetectFrac},
		{"retired frame cap", f.MaxRetiredFrac},
		{"throttle duty", f.ThrottleDuty},
	} {
		if frac.v < 0 || frac.v > 1 {
			return fmt.Errorf("config: %s %f out of [0,1]", frac.name, frac.v)
		}
	}
	if f.ThrottleDuty > 0 && f.ThrottlePeriod == 0 {
		return fmt.Errorf("config: throttle duty %f needs a positive throttle period", f.ThrottleDuty)
	}
	return nil
}

// Geometry builds the address geometry for this system.
func (s System) Geometry() (*addr.Geometry, error) {
	return addr.NewGeometry(s.PageBytes, s.BlockBytes, s.DRAM.CapacityBytes, s.HBM.CapacityBytes, s.HBMWays)
}

// Scaled returns a copy of the system with both memory capacities divided
// by factor. Simulations in tests and benches use scaled-down memories so
// that footprints stress the hierarchy in reasonable wall time; the
// DRAM:HBM ratio, timings and energies are unchanged so normalized results
// keep their shape.
func (s System) Scaled(factor uint64) System {
	out := s
	out.HBM.CapacityBytes = s.HBM.CapacityBytes / factor
	out.DRAM.CapacityBytes = s.DRAM.CapacityBytes / factor
	return out
}
