package config

import (
	"strings"
	"testing"

	"repro/internal/addr"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default() invalid: %v", err)
	}
}

func TestDefaultMatchesTableI(t *testing.T) {
	s := Default()
	if s.Core.FreqMHz != 3600 {
		t.Errorf("core freq = %d, want 3600", s.Core.FreqMHz)
	}
	if s.HBM.CapacityBytes != 1*addr.GiB {
		t.Errorf("HBM capacity = %d, want 1GiB", s.HBM.CapacityBytes)
	}
	if s.DRAM.CapacityBytes != 10*addr.GiB {
		t.Errorf("DRAM capacity = %d, want 10GiB", s.DRAM.CapacityBytes)
	}
	if s.HBM.Channels != 8 || s.HBM.ChannelBits != 128 {
		t.Errorf("HBM channels = %dx%db, want 8x128b", s.HBM.Channels, s.HBM.ChannelBits)
	}
	if s.DRAM.Channels != 2 || s.DRAM.ChannelBits != 64 {
		t.Errorf("DRAM channels = %dx%db, want 2x64b", s.DRAM.Channels, s.DRAM.ChannelBits)
	}
	if s.HBM.Timing.TCAS != 7 || s.HBM.Timing.TRCD != 7 || s.HBM.Timing.TRP != 7 {
		t.Errorf("HBM timing = %+v, want 7-7-7", s.HBM.Timing)
	}
	if s.DRAM.Timing.TCAS != 22 || s.DRAM.Timing.TRCD != 22 || s.DRAM.Timing.TRP != 22 {
		t.Errorf("DRAM timing = %+v, want 22-22-22", s.DRAM.Timing)
	}
	if len(s.Caches) != 3 {
		t.Fatalf("cache levels = %d, want 3", len(s.Caches))
	}
	if s.Caches[2].SizeBytes != 8*addr.MiB || s.Caches[2].Ways != 16 || s.Caches[2].Policy != "DRRIP" {
		t.Errorf("LLC = %+v, want 8MiB 16-way DRRIP", s.Caches[2])
	}
}

func TestPeakBandwidth(t *testing.T) {
	s := Default()
	// HBM2: 8 ch x 128 bit x 2 (DDR) x 1 GHz = 256 GB/s.
	if got := s.HBM.PeakBandwidthGBs(); got < 255 || got > 257 {
		t.Errorf("HBM peak bandwidth = %f, want ~256", got)
	}
	// DDR4-3200: 2 ch x 64 bit x 2 x 1.6 GHz = 51.2 GB/s.
	if got := s.DRAM.PeakBandwidthGBs(); got < 51 || got > 52 {
		t.Errorf("DRAM peak bandwidth = %f, want ~51.2", got)
	}
}

func TestValidateRejects(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*System)
		want string
	}{
		{"zero freq", func(s *System) { s.Core.FreqMHz = 0 }, "frequency"},
		{"zero cpi", func(s *System) { s.Core.CPIBase = 0 }, "CPI"},
		{"zero mlp", func(s *System) { s.Core.MLP = 0 }, "MLP"},
		{"no caches", func(s *System) { s.Caches = nil }, "cache level"},
		{"bad policy", func(s *System) { s.Caches[0].Policy = "FIFO" }, "policy"},
		{"zero channels", func(s *System) { s.HBM.Channels = 0 }, "channels"},
		{"zero clock", func(s *System) { s.DRAM.Timing.ClockMHz = 0 }, "clock"},
		{"bad ratio", func(s *System) { s.Bumblebee.FixedCacheRatio = 1.5 }, "ratio"},
		{"alloc conflict", func(s *System) {
			s.Bumblebee.AllocAllDRAM = true
			s.Bumblebee.AllocAllHBM = true
		}, "mutually exclusive"},
		{"bad block", func(s *System) { s.BlockBytes = 3000 }, "multiple"},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			s := Default()
			m.mut(&s)
			err := s.Validate()
			if err == nil {
				t.Fatal("Validate() = nil, want error")
			}
			if !strings.Contains(err.Error(), m.want) {
				t.Errorf("error %q does not mention %q", err, m.want)
			}
		})
	}
}

func TestScaledKeepsRatio(t *testing.T) {
	s := Default().Scaled(64)
	if err := s.Validate(); err != nil {
		t.Fatalf("scaled config invalid: %v", err)
	}
	if s.DRAM.CapacityBytes/s.HBM.CapacityBytes != 10 {
		t.Errorf("scaled DRAM:HBM = %d:%d, want 10:1", s.DRAM.CapacityBytes, s.HBM.CapacityBytes)
	}
}

func TestGeometryFromConfig(t *testing.T) {
	g, err := Default().Geometry()
	if err != nil {
		t.Fatal(err)
	}
	if g.PagesPerSet() != 88 {
		t.Errorf("pages per set = %d, want 88 (m=80, n=8)", g.PagesPerSet())
	}
}
