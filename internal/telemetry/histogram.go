package telemetry

import "math/bits"

// HistBuckets is the number of log2 latency buckets. Bucket 0 holds the
// value 0; bucket i (i >= 1) holds values v with bits.Len64(v) == i, i.e.
// the range [2^(i-1), 2^i - 1]. 48 buckets cover every latency a
// simulation can produce (2^47 cycles is thousands of simulated hours).
const HistBuckets = 48

// Histogram is a fixed-bucket log2 histogram of per-access service
// latency in CPU cycles. The bucket array is fixed-size so observing is
// allocation-free and two histograms merge and compare bytewise.
type Histogram struct {
	Buckets [HistBuckets]uint64
	Count   uint64
	Sum     uint64
	Max     uint64
}

// Observe records one latency sample.
func (h *Histogram) Observe(v uint64) {
	i := bits.Len64(v)
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	h.Buckets[i]++
	h.Count++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
}

// Mean returns the exact mean latency (the Sum is kept alongside the
// buckets), or 0 for an empty histogram.
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns an upper bound for the q-th quantile (0 < q <= 1): the
// upper edge of the bucket holding the sample of that rank, clamped to the
// observed maximum. An empty histogram yields 0; q <= 0 is treated as the
// first sample. The result is integral and deterministic, so quantile
// columns diff cleanly across runs.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.Count))
	if float64(rank) < q*float64(h.Count) {
		rank++ // ceil
	}
	if rank < 1 {
		rank = 1
	}
	if rank > h.Count {
		rank = h.Count
	}
	var cum uint64
	for i := 0; i < HistBuckets; i++ {
		cum += h.Buckets[i]
		if cum >= rank {
			upper := bucketUpper(i)
			if upper > h.Max {
				upper = h.Max
			}
			return upper
		}
	}
	return h.Max
}

// bucketUpper returns the largest value bucket i can hold.
func bucketUpper(i int) uint64 {
	if i == 0 {
		return 0
	}
	return 1<<uint(i) - 1
}

// Merge adds other's samples into h (Max is the pairwise maximum).
func (h *Histogram) Merge(other *Histogram) {
	for i := range h.Buckets {
		h.Buckets[i] += other.Buckets[i]
	}
	h.Count += other.Count
	h.Sum += other.Sum
	if other.Max > h.Max {
		h.Max = other.Max
	}
}
