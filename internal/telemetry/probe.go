// Package telemetry is the observability layer shared by every hybrid
// memory design in the repository: per-tier service-latency histograms, a
// bounded structured event tracer exportable as Chrome trace_event JSON,
// and an epoch sampler that turns a run's counters into a deterministic
// time series.
//
// Cost contract. Telemetry must be free when disabled: every design calls
// the probe unconditionally on its access path, so a nil *Probe (the
// default) must cost no more than a pointer compare — the exported entry
// points are tiny nil-checked wrappers that inline into the caller, and
// the benchmark suite asserts the disabled path stays under 2 ns/access.
//
// Determinism contract (see internal/runner). One simulation cell owns one
// probe; everything the probe records is a pure function of the cell's
// access stream, so sweeps that fan cells across workers emit byte-
// identical telemetry at any -parallel setting. Nothing in this package
// reads the wall clock.
package telemetry

// Tier identifies which device path served a demand access. The split
// follows the paper's taxonomy: HBM serving as a cache (cHBM), HBM serving
// as OS-visible memory (mHBM/POM), and the off-chip DRAM miss path.
type Tier uint8

const (
	TierCHBM Tier = iota // served from HBM acting as a cache
	TierMHBM             // served from HBM acting as OS-visible memory
	TierDRAM             // served from off-chip DRAM
	NumTiers
)

// String returns the tier's CSV/trace label.
func (t Tier) String() string {
	switch t {
	case TierCHBM:
		return "chbm"
	case TierMHBM:
		return "mhbm"
	case TierDRAM:
		return "dram"
	}
	return "unknown"
}

// DesignState is the design-specific half of an epoch sample: the live
// cHBM:mHBM split and the controller occupancy the aggregate counters
// cannot show. Designs that can report it implement hmm.StateReporter;
// for the rest the fields stay zero.
type DesignState struct {
	CHBMFrames    uint64 // HBM frames currently serving as cHBM
	MHBMFrames    uint64 // HBM frames currently serving as mHBM
	FreeFrames    uint64 // HBM frames holding nothing
	RetiredFrames uint64 // HBM frames quarantined after RAS retirement

	HotHBMEntries  uint64 // hot-table entries tracking HBM-resident pages
	HotDRAMEntries uint64 // hot-table entries tracking DRAM-resident pages

	MoverStarted uint64 // movements the bandwidth-budgeted engine started
	MoverSkipped uint64 // movement opportunities skipped while busy
}

// CHBMRatio returns the cHBM share of occupied HBM frames — the adaptive
// ratio the paper's Figure 7 variants pin statically.
func (s DesignState) CHBMRatio() float64 {
	occ := s.CHBMFrames + s.MHBMFrames
	if occ == 0 {
		return 0
	}
	return float64(s.CHBMFrames) / float64(occ)
}

// Probe is the per-run telemetry collector: the event tracer, the per-tier
// latency histograms, and the epoch clock. A nil probe is the disabled
// state; every method is safe (and nearly free) to call on nil.
type Probe struct {
	Tracer *Tracer
	Lat    [NumTiers]Histogram

	// Epoch is the sampling interval in demand accesses; 0 disables epoch
	// sampling. OnEpoch fires at every boundary with the access count and
	// the completion cycle of the access that crossed it.
	Epoch   uint64
	OnEpoch func(access, cycle uint64)

	accesses uint64
}

// NewProbe builds a probe sampling every epoch accesses (0 disables
// sampling) with an event ring of traceCap entries (<= 0 picks the
// default capacity).
func NewProbe(epoch uint64, traceCap int) *Probe {
	return &Probe{Tracer: NewTracer(traceCap), Epoch: epoch}
}

// ObserveAccess records one demand access served by tier between cycles
// start and done. This is the per-access hot-path entry point: it must
// stay a nil check plus a call so the disabled path inlines away.
func (p *Probe) ObserveAccess(tier Tier, start, done uint64) {
	if p == nil {
		return
	}
	p.observe(tier, start, done)
}

func (p *Probe) observe(tier Tier, start, done uint64) {
	lat := uint64(0)
	if done > start {
		lat = done - start
	}
	if tier >= NumTiers {
		tier = TierDRAM
	}
	p.Lat[tier].Observe(lat)
	p.accesses++
	if p.Epoch > 0 && p.accesses%p.Epoch == 0 {
		p.Tracer.Emit(done, EvEpoch, p.accesses, 0, 0)
		if p.OnEpoch != nil {
			p.OnEpoch(p.accesses, done)
		}
	}
}

// Event records a structured event; like ObserveAccess it is a nil-checked
// wrapper that is free when telemetry is disabled.
func (p *Probe) Event(cycle uint64, kind EventKind, a, b, c uint64) {
	if p == nil {
		return
	}
	p.Tracer.Emit(cycle, kind, a, b, c)
}

// Accesses returns the number of demand accesses observed so far.
func (p *Probe) Accesses() uint64 {
	if p == nil {
		return 0
	}
	return p.accesses
}
