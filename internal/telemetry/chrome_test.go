package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func sampleRuns() []TraceRun {
	return []TraceRun{
		{
			Name:    "bumblebee/mcf",
			FreqMHz: 2000,
			Events: []Event{
				{Cycle: 4000, Kind: EvMigration, A: 3, B: 7, C: 12},
				{Cycle: 5000, Kind: EvModeSwitch, A: 3, B: 7, C: 1},
			},
			CounterNames: []string{"chbm_frames", "mhbm_frames"},
			Counters: []CounterSample{
				{Cycle: 4000, Values: []uint64{10, 2}},
				{Cycle: 8000, Values: []uint64{8, 4}},
			},
		},
		{Name: "no-hbm/mcf", FreqMHz: 2000}, // eventless run still gets its metadata
	}
}

// chromeDoc mirrors the trace_event JSON-object envelope for validation.
type chromeDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string          `json:"name"`
		Ph   string          `json:"ph"`
		Pid  int             `json:"pid"`
		Tid  int             `json:"tid"`
		Ts   float64         `json:"ts"`
		Args json.RawMessage `json:"args"`
	} `json:"traceEvents"`
}

func TestWriteChromeTraceParses(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, sampleRuns()); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	// 2 process_name metadata + 2 instants + 2 counters.
	if len(doc.TraceEvents) != 6 {
		t.Fatalf("traceEvents = %d, want 6", len(doc.TraceEvents))
	}
	var meta, instant, counter int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "i":
			instant++
			if e.Tid != 1 {
				t.Errorf("instant on tid %d, want 1", e.Tid)
			}
		case "C":
			counter++
			if e.Tid != 0 {
				t.Errorf("counter on tid %d, want 0", e.Tid)
			}
		}
	}
	if meta != 2 || instant != 2 || counter != 2 {
		t.Errorf("meta/instant/counter = %d/%d/%d, want 2/2/2", meta, instant, counter)
	}
	// 4000 cycles at 2 GHz = 2 us.
	if !strings.Contains(buf.String(), `"ts":2.000`) {
		t.Errorf("expected ts 2.000 us in output:\n%s", buf.String())
	}
}

func TestWriteChromeTraceDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, sampleRuns()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b, sampleRuns()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("repeated export differs bytewise")
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 0 {
		t.Errorf("empty export has %d events", len(doc.TraceEvents))
	}
}

func TestTsMicros(t *testing.T) {
	cases := []struct {
		cycle, freq uint64
		want        string
	}{
		{0, 2000, "0.000"},
		{2000, 2000, "1.000"},     // 2000 cycles at 2 GHz = 1000 ns
		{1, 2000, "0.000"},        // sub-millinanosecond truncates
		{3, 2000, "0.001"},        // 1.5 ns truncates to 1 millinano... (3*1000/2000 = 1 ns)
		{4500, 1000, "4.500"},     // 1 GHz: cycle = 1 ns
		{123456, 1000, "123.456"},
		{5, 0, "5.000"}, // freq 0 guards to 1 MHz: 5 cycles = 5000 ns
	}
	for _, c := range cases {
		if got := tsMicros(c.cycle, c.freq); got != c.want {
			t.Errorf("tsMicros(%d, %d) = %q, want %q", c.cycle, c.freq, got, c.want)
		}
	}
}

func TestCounterValueShortfallRendersZero(t *testing.T) {
	runs := []TraceRun{{
		Name:         "x",
		FreqMHz:      1000,
		CounterNames: []string{"a", "b"},
		Counters:     []CounterSample{{Cycle: 1, Values: []uint64{7}}}, // one value short
	}}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, runs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"a":7,"b":0`) {
		t.Errorf("missing counter value not zero-filled:\n%s", buf.String())
	}
}
