package telemetry

import (
	"testing"
)

func TestProbeNilSafe(t *testing.T) {
	var p *Probe
	p.ObserveAccess(TierCHBM, 0, 100) // must not panic
	p.Event(1, EvMigration, 1, 2, 3)
	if p.Accesses() != 0 {
		t.Error("nil probe reports accesses")
	}
}

func TestProbeObserveRoutesTiers(t *testing.T) {
	p := NewProbe(0, 16)
	p.ObserveAccess(TierCHBM, 0, 10)
	p.ObserveAccess(TierMHBM, 0, 20)
	p.ObserveAccess(TierDRAM, 0, 30)
	for tier, want := range map[Tier]uint64{TierCHBM: 10, TierMHBM: 20, TierDRAM: 30} {
		if got := p.Lat[tier].Sum; got != want {
			t.Errorf("Lat[%s].Sum = %d, want %d", tier, got, want)
		}
	}
	// An out-of-range tier must clamp, not index out of bounds.
	p.ObserveAccess(Tier(250), 0, 5)
	if p.Lat[TierDRAM].Count != 2 {
		t.Errorf("out-of-range tier not clamped to DRAM: count %d", p.Lat[TierDRAM].Count)
	}
	if p.Accesses() != 4 {
		t.Errorf("Accesses = %d, want 4", p.Accesses())
	}
}

func TestProbeLatencyGuard(t *testing.T) {
	p := NewProbe(0, 16)
	// done <= start (a design that completed "instantly" or a clock quirk)
	// records latency 0 rather than wrapping to ~2^64.
	p.ObserveAccess(TierCHBM, 100, 100)
	p.ObserveAccess(TierCHBM, 100, 50)
	if p.Lat[TierCHBM].Sum != 0 || p.Lat[TierCHBM].Max != 0 {
		t.Errorf("non-positive latency leaked: Sum=%d Max=%d",
			p.Lat[TierCHBM].Sum, p.Lat[TierCHBM].Max)
	}
}

func TestProbeEpochSampling(t *testing.T) {
	p := NewProbe(3, 16)
	var gotAccess, gotCycle []uint64
	p.OnEpoch = func(access, cycle uint64) {
		gotAccess = append(gotAccess, access)
		gotCycle = append(gotCycle, cycle)
	}
	for i := uint64(1); i <= 7; i++ {
		p.ObserveAccess(TierDRAM, 0, i*10)
	}
	if len(gotAccess) != 2 {
		t.Fatalf("OnEpoch fired %d times, want 2 (epochs at access 3 and 6)", len(gotAccess))
	}
	if gotAccess[0] != 3 || gotAccess[1] != 6 {
		t.Errorf("epoch accesses = %v, want [3 6]", gotAccess)
	}
	if gotCycle[0] != 30 || gotCycle[1] != 60 {
		t.Errorf("epoch cycles = %v, want [30 60]", gotCycle)
	}
	// Each boundary also drops an EvEpoch marker in the trace.
	ev := p.Tracer.Events()
	if len(ev) != 2 || ev[0].Kind != EvEpoch || ev[0].A != 3 || ev[1].A != 6 {
		t.Errorf("trace epochs = %+v", ev)
	}
}

func TestProbeZeroEpochNeverFires(t *testing.T) {
	p := NewProbe(0, 16)
	p.OnEpoch = func(access, cycle uint64) {
		t.Error("OnEpoch fired with Epoch = 0")
	}
	for i := uint64(0); i < 100; i++ {
		p.ObserveAccess(TierCHBM, 0, i)
	}
}

// BenchmarkProbeDisabled measures the per-access cost of telemetry when it
// is off — the nil-pointer path every design pays unconditionally. The
// package cost contract promises this inlines to a pointer compare; see
// TestDisabledProbeOverhead for the enforced bound.
func BenchmarkProbeDisabled(b *testing.B) {
	var p *Probe
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.ObserveAccess(TierCHBM, 0, uint64(i))
	}
}

func BenchmarkProbeEnabled(b *testing.B) {
	p := NewProbe(0, DefaultTraceDepth)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.ObserveAccess(TierCHBM, 0, uint64(i))
	}
}

func BenchmarkProbeEnabledWithEpochs(b *testing.B) {
	p := NewProbe(1024, DefaultTraceDepth)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.ObserveAccess(TierCHBM, 0, uint64(i))
	}
}
