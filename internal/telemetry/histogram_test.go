package telemetry

import "testing"

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if got := h.Mean(); got != 0 {
		t.Errorf("empty Mean = %v, want 0", got)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %d, want 0", q, got)
		}
	}
	if h.Max != 0 || h.Count != 0 {
		t.Errorf("empty histogram has Max=%d Count=%d", h.Max, h.Count)
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Observe(100)
	if h.Count != 1 || h.Sum != 100 || h.Max != 100 {
		t.Fatalf("after one sample: Count=%d Sum=%d Max=%d", h.Count, h.Sum, h.Max)
	}
	if got := h.Mean(); got != 100 {
		t.Errorf("Mean = %v, want 100", got)
	}
	// Every quantile of a single sample is that sample's bucket bound,
	// clamped to the observed max — exactly 100 here.
	for _, q := range []float64{0, 0.01, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 100 {
			t.Errorf("Quantile(%v) = %d, want 100", q, got)
		}
	}
}

func TestHistogramZeroSample(t *testing.T) {
	var h Histogram
	h.Observe(0)
	if h.Buckets[0] != 1 {
		t.Errorf("zero sample not in bucket 0: %v", h.Buckets[:4])
	}
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("Quantile(0.5) = %d, want 0", got)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	// bits.Len64 bucketing: value v lands in bucket Len64(v), so powers of
	// two start a new bucket and (2^i)-1 ends the previous one.
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{255, 8}, {256, 9}, {1 << 47, HistBuckets - 1}, {^uint64(0), HistBuckets - 1},
	}
	for _, c := range cases {
		var h Histogram
		h.Observe(c.v)
		if h.Buckets[c.bucket] != 1 {
			t.Errorf("Observe(%d): bucket %d empty (buckets %v)", c.v, c.bucket, h.Buckets)
		}
	}
}

func TestHistogramQuantileWalk(t *testing.T) {
	var h Histogram
	// 90 samples of 10 (bucket 4, upper 15) and 10 samples of 1000
	// (bucket 10, upper 1023).
	for i := 0; i < 90; i++ {
		h.Observe(10)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000)
	}
	if got := h.Quantile(0.50); got != 15 {
		t.Errorf("p50 = %d, want 15 (bucket upper of 10)", got)
	}
	if got := h.Quantile(0.90); got != 15 {
		t.Errorf("p90 = %d, want 15", got)
	}
	// Rank 91 falls in the 1000s bucket; its upper bound 1023 clamps to
	// the observed max 1000.
	if got := h.Quantile(0.95); got != 1000 {
		t.Errorf("p95 = %d, want 1000 (clamped to max)", got)
	}
	if got := h.Quantile(1); got != 1000 {
		t.Errorf("p100 = %d, want 1000", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(4)
	a.Observe(8)
	b.Observe(1000)
	a.Merge(&b)
	if a.Count != 3 || a.Sum != 1012 || a.Max != 1000 {
		t.Errorf("merged: Count=%d Sum=%d Max=%d", a.Count, a.Sum, a.Max)
	}
	if got := a.Quantile(1); got != 1000 {
		t.Errorf("merged p100 = %d, want 1000", got)
	}
}
