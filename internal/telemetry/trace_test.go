package telemetry

import "testing"

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(1, EvMigration, 1, 2, 3) // must not panic
	if tr.Events() != nil {
		t.Error("nil tracer returned events")
	}
	if tr.Total() != 0 || tr.Dropped() != 0 {
		t.Error("nil tracer reports nonzero totals")
	}
}

func TestTracerOrderBeforeWrap(t *testing.T) {
	tr := NewTracer(8)
	for i := uint64(0); i < 5; i++ {
		tr.Emit(i, EvEpoch, i, 0, 0)
	}
	ev := tr.Events()
	if len(ev) != 5 {
		t.Fatalf("len = %d, want 5", len(ev))
	}
	for i, e := range ev {
		if e.Cycle != uint64(i) {
			t.Errorf("ev[%d].Cycle = %d, want %d", i, e.Cycle, i)
		}
	}
	if tr.Total() != 5 || tr.Dropped() != 0 {
		t.Errorf("Total=%d Dropped=%d, want 5, 0", tr.Total(), tr.Dropped())
	}
}

func TestTracerWraparound(t *testing.T) {
	tr := NewTracer(4)
	for i := uint64(0); i < 10; i++ {
		tr.Emit(i, EvEviction, i, 0, 0)
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("len = %d, want ring capacity 4", len(ev))
	}
	// The tail of the run is retained, oldest-first: cycles 6, 7, 8, 9.
	for i, e := range ev {
		want := uint64(6 + i)
		if e.Cycle != want {
			t.Errorf("ev[%d].Cycle = %d, want %d", i, e.Cycle, want)
		}
	}
	if tr.Total() != 10 {
		t.Errorf("Total = %d, want 10", tr.Total())
	}
	if tr.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", tr.Dropped())
	}
}

func TestTracerEventsIsACopy(t *testing.T) {
	tr := NewTracer(4)
	tr.Emit(1, EvFlush, 0, 0, 0)
	ev := tr.Events()
	tr.Emit(2, EvFault, 9, 9, 9)
	if len(ev) != 1 || ev[0].Cycle != 1 {
		t.Error("Events() snapshot was mutated by a later Emit")
	}
}

func TestEventKindStrings(t *testing.T) {
	want := map[EventKind]string{
		EvEpoch: "epoch", EvMigration: "migration", EvModeSwitch: "mode_switch",
		EvRemap: "remap", EvEviction: "eviction", EvFlush: "flush",
		EvFault: "fault", EvQuarantine: "quarantine",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
	if EventKind(200).String() != "unknown" {
		t.Errorf("out-of-range kind = %q", EventKind(200).String())
	}
}

func BenchmarkTracerEmit(b *testing.B) {
	tr := NewTracer(DefaultTraceDepth)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(uint64(i), EvMigration, 1, 2, 3)
	}
}

func BenchmarkTracerEmitDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(uint64(i), EvMigration, 1, 2, 3)
	}
}
