package telemetry

// EventKind is the type tag of one structured trace event. Events carry
// three small integer arguments whose meaning depends on the kind (set
// index, original slot, frame number, ...); keeping them as raw integers
// makes an Emit a fixed-size struct store — no allocation, no formatting
// — so tracing is cheap enough to leave on during full-scale sweeps.
type EventKind uint8

const (
	EvEpoch      EventKind = iota // epoch boundary (a = access count)
	EvMigration                   // page migration into mHBM/POM (a = set, b = orig, c = frame)
	EvModeSwitch                  // cHBM<->mHBM flip (a = set, b = orig, c = 1 for c->m, 0 for m->c)
	EvRemap                       // BLE/PLE remap: swap, promote, alias-out (a = set, b = orig, c = peer)
	EvEviction                    // page or block eviction from HBM (a = set, b = orig)
	EvFlush                       // HMF(5) batched cHBM flush (a = first set, b = batch size)
	EvFault                       // RAS fault injection (a = frame, b = 1 for ECC retry, c = 1 for permanent failure)
	EvQuarantine                  // frame evacuated and quarantined (a = frame, b = mode it held)
	numEventKinds
)

var eventNames = [numEventKinds]string{
	"epoch", "migration", "mode_switch", "remap", "eviction", "flush",
	"fault", "quarantine",
}

// String returns the kind's trace label.
func (k EventKind) String() string {
	if int(k) < len(eventNames) {
		return eventNames[k]
	}
	return "unknown"
}

// Event is one structured trace record. The struct is fixed-size (32
// bytes) so a ring of them is a single allocation for the run's lifetime.
type Event struct {
	Cycle   uint64
	Kind    EventKind
	A, B, C uint64
}

// DefaultTraceDepth is the ring capacity used when a caller passes <= 0.
const DefaultTraceDepth = 4096

// Tracer is a bounded ring buffer of events: when the ring is full the
// oldest events are overwritten, so a runaway phase cannot grow memory —
// the tail of the run is always retained, and Dropped reports how much
// history was lost. A nil tracer discards everything.
type Tracer struct {
	buf []Event
	n   uint64 // total events emitted
}

// NewTracer builds a tracer with the given ring capacity (<= 0 picks
// DefaultTraceDepth). The ring is allocated once, up front.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceDepth
	}
	return &Tracer{buf: make([]Event, capacity)}
}

// Emit records one event. Nil-safe; allocation-free.
func (t *Tracer) Emit(cycle uint64, kind EventKind, a, b, c uint64) {
	if t == nil {
		return
	}
	t.buf[t.n%uint64(len(t.buf))] = Event{Cycle: cycle, Kind: kind, A: a, B: b, C: c}
	t.n++
}

// Events returns the retained events oldest-first. The slice is a copy;
// the ring keeps recording.
func (t *Tracer) Events() []Event {
	if t == nil || t.n == 0 {
		return nil
	}
	if t.n <= uint64(len(t.buf)) {
		return append([]Event(nil), t.buf[:t.n]...)
	}
	start := t.n % uint64(len(t.buf))
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[start:]...)
	return append(out, t.buf[:start]...)
}

// Total returns how many events were emitted over the run's lifetime.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.n
}

// Dropped returns how many events the ring overwrote.
func (t *Tracer) Dropped() uint64 {
	if t == nil || t.n <= uint64(len(t.buf)) {
		return 0
	}
	return t.n - uint64(len(t.buf))
}
