//go:build !race

package telemetry

import "testing"

// TestDisabledProbeOverhead enforces the package's cost contract: calling
// ObserveAccess on a nil probe — the state every design runs in unless
// telemetry is requested — must cost under 2 ns per access. The bound is
// generous for an inlined nil check (well under 1 ns on current hardware)
// but tight enough to catch the wrapper growing past the inlining budget.
//
// Excluded under the race detector (its instrumentation multiplies the
// cost of every call) and in -short mode (timing is meaningless on a
// heavily shared CI executor, where the benchmark itself still runs).
func TestDisabledProbeOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing assertion skipped in -short mode")
	}
	res := testing.Benchmark(BenchmarkProbeDisabled)
	if ns := float64(res.T.Nanoseconds()) / float64(res.N); ns >= 2 {
		t.Errorf("disabled ObserveAccess costs %.2f ns/op, want < 2 (inlined nil check)", ns)
	}
	if res.AllocsPerOp() != 0 {
		t.Errorf("disabled ObserveAccess allocates %d/op, want 0", res.AllocsPerOp())
	}
}
