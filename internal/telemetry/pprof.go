package telemetry

import (
	_ "expvar" // register /debug/vars
	"net"
	"net/http"
	_ "net/http/pprof" // register /debug/pprof handlers
)

// StartPprof serves the Go runtime's pprof and expvar endpoints on addr
// in a background goroutine, returning the address actually bound (useful
// when addr asks for port 0). This profiles the simulator itself — CPU,
// heap, goroutine, and mutex profiles of a sweep in flight — and is
// independent of the simulated-time telemetry in the rest of the package.
func StartPprof(addr string, logf func(format string, args ...any)) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	bound := ln.Addr().String()
	if logf != nil {
		logf("pprof: serving http://%s/debug/pprof/ and /debug/vars", bound)
	}
	go func() {
		// DefaultServeMux carries the pprof and expvar registrations from
		// the blank imports above.
		err := http.Serve(ln, nil)
		if err != nil && logf != nil {
			logf("pprof: server stopped: %v", err)
		}
	}()
	return bound, nil
}
