package telemetry

import (
	"bufio"
	"io"
	"strconv"
)

// TraceRun bundles one simulation run's telemetry for Chrome trace_event
// export: its display name, the core frequency (to convert cycles to
// microseconds), the structured events, and an optional counter track
// (one named series per CounterNames entry, sampled at epoch boundaries —
// Perfetto renders these as stacked area charts, which is exactly the
// "cHBM:mHBM ratio over time" view the paper's Figure 7 variants pin
// statically).
type TraceRun struct {
	Name         string
	FreqMHz      uint64
	Events       []Event
	CounterNames []string
	Counters     []CounterSample
	Spans        []SpanEvent
}

// SpanEvent is one completed duration span, rendered as a Chrome
// trace_event complete ("ph":"X") slice. Start and Dur are in the run's
// cycle domain (converted via FreqMHz like Events); TID picks the track
// row — spans that properly nest may share a row, overlapping spans must
// not. Args are rendered in slice order, so a fixed arg order keeps the
// output byte-deterministic.
type SpanEvent struct {
	Name  string
	TID   int
	Start uint64
	Dur   uint64
	Args  []SpanArg
}

// SpanArg is one ordered key/value annotation on a span.
type SpanArg struct {
	Key, Value string
}

// CounterSample is one epoch's counter values, aligned with the owning
// run's CounterNames.
type CounterSample struct {
	Cycle  uint64
	Values []uint64
}

// WriteChromeTrace emits runs in the Chrome trace_event JSON format
// (JSON-object flavour), loadable directly in Perfetto or
// chrome://tracing. Each run becomes one process (pid = position + 1)
// with its events on tid 1 and its counter track on tid 0. Output is a
// pure function of the input — timestamps come from simulated cycles, so
// exports diff bytewise across -parallel settings.
func WriteChromeTrace(w io.Writer, runs []TraceRun) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")
	first := true
	comma := func() {
		if !first {
			bw.WriteByte(',')
		}
		first = false
	}
	for i, r := range runs {
		pid := i + 1
		comma()
		bw.WriteString(`{"name":"process_name","ph":"M","pid":`)
		bw.WriteString(strconv.Itoa(pid))
		bw.WriteString(`,"tid":0,"args":{"name":`)
		bw.WriteString(strconv.Quote(r.Name))
		bw.WriteString("}}")
		for _, e := range r.Events {
			comma()
			bw.WriteString(`{"name":`)
			bw.WriteString(strconv.Quote(e.Kind.String()))
			bw.WriteString(`,"cat":"hmm","ph":"i","s":"t","ts":`)
			bw.WriteString(tsMicros(e.Cycle, r.FreqMHz))
			bw.WriteString(`,"pid":`)
			bw.WriteString(strconv.Itoa(pid))
			bw.WriteString(`,"tid":1,"args":{"a":`)
			bw.WriteString(strconv.FormatUint(e.A, 10))
			bw.WriteString(`,"b":`)
			bw.WriteString(strconv.FormatUint(e.B, 10))
			bw.WriteString(`,"c":`)
			bw.WriteString(strconv.FormatUint(e.C, 10))
			bw.WriteString("}}")
		}
		for _, sp := range r.Spans {
			comma()
			bw.WriteString(`{"name":`)
			bw.WriteString(strconv.Quote(sp.Name))
			bw.WriteString(`,"cat":"span","ph":"X","ts":`)
			bw.WriteString(tsMicros(sp.Start, r.FreqMHz))
			bw.WriteString(`,"dur":`)
			bw.WriteString(tsMicros(sp.Dur, r.FreqMHz))
			bw.WriteString(`,"pid":`)
			bw.WriteString(strconv.Itoa(pid))
			bw.WriteString(`,"tid":`)
			bw.WriteString(strconv.Itoa(sp.TID))
			bw.WriteString(`,"args":{`)
			for j, a := range sp.Args {
				if j > 0 {
					bw.WriteByte(',')
				}
				bw.WriteString(strconv.Quote(a.Key))
				bw.WriteByte(':')
				bw.WriteString(strconv.Quote(a.Value))
			}
			bw.WriteString("}}")
		}
		for _, s := range r.Counters {
			comma()
			bw.WriteString(`{"name":"state","ph":"C","ts":`)
			bw.WriteString(tsMicros(s.Cycle, r.FreqMHz))
			bw.WriteString(`,"pid":`)
			bw.WriteString(strconv.Itoa(pid))
			bw.WriteString(`,"tid":0,"args":{`)
			for j, n := range r.CounterNames {
				if j > 0 {
					bw.WriteByte(',')
				}
				bw.WriteString(strconv.Quote(n))
				bw.WriteByte(':')
				v := uint64(0)
				if j < len(s.Values) {
					v = s.Values[j]
				}
				bw.WriteString(strconv.FormatUint(v, 10))
			}
			bw.WriteString("}}")
		}
	}
	bw.WriteString("]}\n")
	return bw.Flush()
}

// tsMicros converts a CPU cycle count to a trace timestamp in
// microseconds with fixed millinanosecond precision, using only integer
// arithmetic so the rendering is deterministic across platforms.
func tsMicros(cycle, freqMHz uint64) string {
	if freqMHz == 0 {
		freqMHz = 1
	}
	ns := cycle * 1000 / freqMHz
	return strconv.FormatUint(ns/1000, 10) + "." + pad3(ns%1000)
}

// pad3 renders v (< 1000) as exactly three digits.
func pad3(v uint64) string {
	s := strconv.FormatUint(v, 10)
	for len(s) < 3 {
		s = "0" + s
	}
	return s
}
